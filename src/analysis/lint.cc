#include "analysis/lint.hh"

#include <sstream>
#include <unordered_set>

#include "analysis/dataflow.hh"
#include "analysis/leak.hh"
#include "analysis/taint.hh"
#include "analysis/ternary.hh"

namespace autocc::analysis
{

using rtl::Netlist;
using rtl::Node;
using rtl::NodeId;
using rtl::Op;

namespace
{

/** Expected operand count per operator. */
int
expectedArity(Op op)
{
    switch (op) {
      case Op::Input:
      case Op::Const:
      case Op::Reg:
        return 0;
      case Op::MemRead:
      case Op::Not:
      case Op::ShlC:
      case Op::ShrC:
      case Op::Slice:
      case Op::RedOr:
      case Op::RedAnd:
        return 1;
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Add:
      case Op::Sub:
      case Op::Eq:
      case Op::Ult:
      case Op::Concat:
        return 2;
      case Op::Mux:
        return 3;
    }
    return 0;
}

class Linter
{
  public:
    Linter(const Netlist &netlist, const LintWaivers &waivers)
        : netlist_(netlist), waivers_(waivers), graph_(netlist)
    {
        report_.netlistName = netlist.name();
    }

    LintReport run();

  private:
    void add(const char *rule, Severity severity, const std::string &path,
             std::string message);
    std::string pathOf(NodeId id) const;

    void checkOps();
    void checkRegs();
    void checkTransactions();
    void checkLiveness();
    void checkFlushClaims();
    void checkTaint();

    const Netlist &netlist_;
    const LintWaivers &waivers_;
    DataflowGraph graph_;
    LintReport report_;
};

void
Linter::add(const char *rule, Severity severity, const std::string &path,
            std::string message)
{
    LintFinding finding;
    finding.rule = rule;
    finding.severity = severity;
    finding.path = path;
    finding.message = std::move(message);
    finding.waived = waivers_.matches(finding.rule, finding.path);
    report_.findings.push_back(std::move(finding));
}

std::string
Linter::pathOf(NodeId id) const
{
    const std::string name = netlist_.nodeName(id);
    return name.empty() ? "#" + std::to_string(id) : name;
}

// E-OP-ARITY / E-OP-WIDTH: per-operator structural consistency.  The
// public builder API panics on these, so they guard hand-assembled or
// pass-transformed netlists (defense in depth after e.g. COI pruning).
void
Linter::checkOps()
{
    for (NodeId id = 0; id < netlist_.numNodes(); ++id) {
        const Node &node = netlist_.node(id);
        if (node.numOperands != expectedArity(node.op)) {
            add("E-OP-ARITY", Severity::Error, pathOf(id),
                "operator has " + std::to_string(node.numOperands) +
                    " operands, expected " +
                    std::to_string(expectedArity(node.op)));
            continue;
        }
        const auto w = [&](int i) {
            return netlist_.width(node.operands[i]);
        };
        const auto widthError = [&](const std::string &message) {
            add("E-OP-WIDTH", Severity::Error, pathOf(id), message);
        };
        switch (node.op) {
          case Op::Not:
            if (node.width != w(0))
                widthError("not: result width != operand width");
            break;
          case Op::And:
          case Op::Or:
          case Op::Xor:
          case Op::Add:
          case Op::Sub:
            if (w(0) != w(1) || node.width != w(0))
                widthError("binary op: operand/result widths differ");
            break;
          case Op::Eq:
          case Op::Ult:
            if (w(0) != w(1))
                widthError("compare: operand widths differ");
            else if (node.width != 1)
                widthError("compare: result must be 1 bit");
            break;
          case Op::Mux:
            if (w(0) != 1)
                widthError("mux: select must be 1 bit");
            else if (w(1) != w(2) || node.width != w(1))
                widthError("mux: branch/result widths differ");
            break;
          case Op::ShlC:
          case Op::ShrC:
            if (node.width != w(0))
                widthError("shift: result width != operand width");
            else if (node.aux >= node.width)
                widthError("shift: amount >= width");
            break;
          case Op::Concat:
            if (node.width != w(0) + w(1))
                widthError("concat: result width != sum of operands");
            break;
          case Op::Slice:
            if (node.aux + node.width > w(0))
                widthError("slice: bit range exceeds operand width");
            break;
          case Op::RedOr:
          case Op::RedAnd:
            if (node.width != 1)
                widthError("reduction: result must be 1 bit");
            break;
          case Op::MemRead:
            if (node.aux >= netlist_.mems().size()) {
                widthError("memread: bad memory index");
            } else if (node.width !=
                       netlist_.mems()[node.aux].dataWidth) {
                widthError("memread: result width != memory data width");
            }
            break;
          default:
            break;
        }
    }
}

// E-REG-NEXT: every register must have a width-matching next-state.
void
Linter::checkRegs()
{
    for (const auto &reg : netlist_.regs()) {
        if (reg.next == rtl::invalidNode) {
            add("E-REG-NEXT", Severity::Error, reg.name,
                "register next-state is unconnected");
        } else if (netlist_.width(reg.next) != netlist_.width(reg.node)) {
            add("E-REG-NEXT", Severity::Error, reg.name,
                "register next-state width mismatch");
        }
    }
}

// E-TXN-PORT / W-TXN-DIR: transaction payloads must name real ports
// and share their valid's direction — the miter only gates payload
// equality by the valid when the directions match, and silently skips
// the gating otherwise.
void
Linter::checkTransactions()
{
    for (const auto &txn : netlist_.transactions()) {
        const rtl::Port *valid = netlist_.findPort(txn.validPort);
        if (!valid) {
            add("E-TXN-PORT", Severity::Error, txn.name,
                "valid port '" + txn.validPort + "' does not exist");
            continue;
        }
        for (const auto &payload : txn.payloadPorts) {
            const rtl::Port *port = netlist_.findPort(payload);
            if (!port) {
                add("E-TXN-PORT", Severity::Error,
                    txn.name + "." + payload,
                    "payload port does not exist");
            } else if (port->dir != valid->dir) {
                add("W-TXN-DIR", Severity::Warning,
                    txn.name + "." + payload,
                    "payload direction differs from valid '" +
                        txn.validPort +
                        "'; its equality will not be gated by the valid "
                        "in the generated miter");
            }
        }
    }
}

// W-REG-NEVER-READ / W-REG-UNOBSERVABLE / W-INPUT-UNUSED /
// I-DEAD-NODE: liveness and observability.
void
Linter::checkLiveness()
{
    // "Used" = combinational fan-out, drives a register next-state, or
    // feeds a memory write port.
    std::vector<bool> used(netlist_.numNodes(), false);
    for (NodeId id = 0; id < netlist_.numNodes(); ++id)
        used[id] = !graph_.fanout(id).empty();
    for (const auto &reg : netlist_.regs()) {
        if (reg.next != rtl::invalidNode)
            used[reg.next] = true;
    }
    for (const auto &write : netlist_.memWrites()) {
        used[write.enable] = true;
        used[write.addr] = true;
        used[write.data] = true;
    }

    const std::vector<NodeId> roots = observabilityRoots(netlist_);
    std::vector<bool> isRoot(netlist_.numNodes(), false);
    for (NodeId id : roots)
        isRoot[id] = true;
    const Cone observed = graph_.backwardCone(roots);

    std::unordered_set<NodeId> named;
    for (const auto &[name, id] : netlist_.signals())
        named.insert(id);

    for (const auto &reg : netlist_.regs()) {
        if (!used[reg.node] && !isRoot[reg.node]) {
            add("W-REG-NEVER-READ", Severity::Warning, reg.name,
                "register drives no logic, port or property");
        } else if (!observed.contains(reg.node)) {
            add("W-REG-UNOBSERVABLE", Severity::Warning, reg.name,
                "register is outside the backward cone of every "
                "output, property, arch signal and flush-done — the "
                "spy can never observe it");
        }
    }

    for (const auto &port : netlist_.ports()) {
        if (port.dir == rtl::PortDir::In && !used[port.node] &&
            !isRoot[port.node])
            add("W-INPUT-UNUSED", Severity::Warning, port.name,
                "input port drives no logic");
    }

    for (NodeId id = 0; id < netlist_.numNodes(); ++id) {
        const Op op = netlist_.node(id).op;
        if (op == Op::Input || op == Op::Const || op == Op::Reg)
            continue;
        if (!used[id] && !isRoot[id] && !named.count(id)) {
            add("I-DEAD-NODE", Severity::Info, pathOf(id),
                "combinational node has no fan-out");
        }
    }
}

// W-FLUSH-CLAIM: under the declared flush facts, every register the
// flush claims to clear must ternary-evaluate to a constant.
void
Linter::checkFlushClaims()
{
    if (netlist_.flushClaims().empty())
        return;
    if (netlist_.flushFacts().empty()) {
        for (NodeId reg : netlist_.flushClaims()) {
            add("W-FLUSH-CLAIM", Severity::Warning,
                netlist_.regs()[netlist_.node(reg).aux].name,
                "register is claimed flushed but no flush facts are "
                "declared");
        }
        return;
    }
    std::vector<std::pair<NodeId, uint64_t>> forced;
    for (const auto &fact : netlist_.flushFacts())
        forced.emplace_back(fact.node, fact.value);
    const std::vector<Ternary> vals = evalTernary(netlist_, forced);
    for (NodeId regNode : netlist_.flushClaims()) {
        const auto &reg = netlist_.regs()[netlist_.node(regNode).aux];
        if (reg.next == rtl::invalidNode)
            continue; // E-REG-NEXT already fired
        if (!vals[reg.next].fullyKnown(netlist_.width(regNode))) {
            add("W-FLUSH-CLAIM", Severity::Warning, reg.name,
                "flush sequence does not drive this register to a "
                "constant, but the builder claims it is cleared");
        }
    }
}

// W-TAINT-FLUSH-GAP / W-TAINT-OUT-UNCHECKED: information-flow smells
// (analysis/taint.hh).  A DUT that declares a flush but leaves a
// register tainted has a gap in its flush cone; an assert-bearing
// netlist whose tainted output feeds no assertion has divergence its
// properties cannot see.
void
Linter::checkTaint()
{
    const TaintReport taint = analyzeTaint(netlist_);

    if (taint.hasFlushFacts || taint.hasFlushDone) {
        for (size_t i = 0; i < netlist_.regs().size(); ++i) {
            const TaintState &ts = taint.states[i];
            if (!ts.label.tainted())
                continue;
            if (ts.source) {
                add("W-TAINT-FLUSH-GAP", Severity::Warning, ts.name,
                    "register is outside the declared flush cone and "
                    "survives the context switch as a taint source");
            } else {
                add("W-TAINT-FLUSH-GAP", Severity::Warning, ts.name,
                    "register is cleared by the flush but re-tainted "
                    "by surviving state at cycle " +
                        std::to_string(ts.label.depth));
            }
        }
    }

    if (!netlist_.asserts().empty()) {
        std::vector<NodeId> roots;
        for (const auto &property : netlist_.asserts())
            roots.push_back(property.node);
        const Cone checked = graph_.backwardCone(roots);
        for (const auto &out : taint.outputs) {
            if (!out.label.tainted())
                continue;
            const rtl::Port *port = netlist_.findPort(out.name);
            if (port && !checked.contains(port->node)) {
                add("W-TAINT-OUT-UNCHECKED", Severity::Warning, out.name,
                    "tainted output port (first divergence at cycle " +
                        std::to_string(out.label.depth) +
                        ") is outside the backward cone of every "
                        "embedded assertion");
            }
        }
    }
}

LintReport
Linter::run()
{
    checkOps();
    checkRegs();
    checkTransactions();
    checkLiveness();
    checkFlushClaims();
    checkTaint();
    return std::move(report_);
}

} // namespace

bool
LintWaivers::matches(const std::string &rule, const std::string &path) const
{
    for (const auto &entry : entries) {
        const size_t colon = entry.find(':');
        if (colon == std::string::npos) {
            if (entry == rule)
                return true;
        } else if (entry.compare(0, colon, rule) == 0 &&
                   path.find(entry.substr(colon + 1)) !=
                       std::string::npos) {
            return true;
        }
    }
    return false;
}

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

size_t
LintReport::count(Severity at_least) const
{
    size_t n = 0;
    for (const auto &finding : findings) {
        if (!finding.waived && finding.severity >= at_least)
            ++n;
    }
    return n;
}

std::string
LintReport::render(bool include_waived) const
{
    std::ostringstream os;
    for (const auto &finding : findings) {
        if (finding.waived && !include_waived)
            continue;
        os << severityName(finding.severity) << "  "
           << finding.rule << "  " << finding.path << "  "
           << finding.message;
        if (finding.waived)
            os << "  [waived]";
        os << "\n";
    }
    return os.str();
}

LintReport
runLint(const Netlist &netlist, const LintWaivers &waivers)
{
    return Linter(netlist, waivers).run();
}

} // namespace autocc::analysis

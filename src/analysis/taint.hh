/**
 * @file
 * Word-level two-universe information-flow (taint) engine.
 *
 * AutoCC's miter asks, per output and cycle, whether state left
 * behind by the victim can make the two universes diverge once the
 * spy runs.  That is an information-flow question, and a sound
 * structural over-approximation of it needs no SAT call (the same
 * observation behind UPEC's structural pre-analysis and the fence.t
 * flush-cone argument): label everything that *may differ across the
 * universes at the modeled context switch* as a taint source, run a
 * forward sequential fixpoint, and every output whose label stays
 * clean is statically proven non-interfering — its spy-mode equality
 * assertion can never fail, so the formal engine may skip its
 * unrolled clauses entirely (EngineOptions::taintDischarge).
 *
 * Taint sources — state that may still differ when the transfer
 * window opens:
 *
 *  - registers that are neither cleared by the flush (next-state
 *    ternary-constant under the declared flush facts, exactly the
 *    leak classifier's criterion), nor pinned by the flush-done
 *    signal (a forward/backward constant fixpoint under
 *    "flush_done = 1" — how an idle-pipeline flush like the AES
 *    DUT's proves its valid chain equal with no flush facts at all),
 *    nor equalized by the modeled context switch
 *    (TaintOptions::equalizedRegs, the miter's
 *    architectural_state_eq refinement set: state the OS swaps);
 *  - every memory (no per-word clear exists in the IR);
 *  - replicated input ports whose equality assumption the miter
 *    gates by a transaction valid: when the valid is low in spy
 *    mode, the payload may legally differ across universes.
 *
 * Propagation distinguishes mux control from data (a tainted select
 * only propagates when the two branches can actually differ), splits
 * memory taint into an address channel (which word is written may
 * differ) and a data channel (what is written may differ), and kills
 * false control taint with a ternary-eval refinement: any node that
 * evaluates to a full constant with no assumptions is identical in
 * both universes forever, whatever its operands' labels say.
 *
 * Every label carries the earliest cycle (counted from the context
 * switch) at which divergent data can arrive — depth 0 means "can
 * already differ when the spy starts", an output's depth is its first
 * possible divergence.  Soundness rests on the same declared-flush
 * contract the leak classifier golden-tests via
 * RunResult::staticMissed; RunResult::taintUnsoundCex is the runtime
 * tripwire that replays every counterexample against the discharged
 * assertions.
 */

#ifndef AUTOCC_ANALYSIS_TAINT_HH
#define AUTOCC_ANALYSIS_TAINT_HH

#include <set>
#include <string>
#include <vector>

#include "rtl/netlist.hh"

namespace autocc::obs
{
class Registry;
}

namespace autocc::analysis
{

struct LeakReport;

/** Depth value meaning "taint can never arrive". */
constexpr unsigned taintNever = 0xffffffffu;

/** Options for the taint analysis. */
struct TaintOptions
{
    /**
     * Register names (DUT-relative) equalized by the modeled context
     * switch — the miter's architectural_state_eq refinement set
     * (AutoccOptions::archEq).  These hold equal values when spy mode
     * starts, so they are not taint sources (they can still become
     * tainted later through propagation).  Entries that do not name a
     * register are ignored: equalizing a derived wire pins no state.
     */
    std::set<std::string> equalizedRegs;
};

/** Taint label of one node / memory channel. */
struct TaintLabel
{
    /** Earliest cycle divergent data can arrive; taintNever if none. */
    unsigned depth = taintNever;

    bool tainted() const { return depth != taintNever; }
};

/** Why a state element is, or is not, a taint source. */
enum class TaintOrigin : uint8_t {
    Surviving,     ///< not equalized/flushed: differs at the switch
    Memory,        ///< memories always survive (no per-word clear)
    Flushed,       ///< next-state constant under the flush facts
    FlushImplied,  ///< value pinned by the flush-done=1 fixpoint
    Equalized,     ///< in TaintOptions::equalizedRegs (OS-swapped)
};

/** Per-register / per-memory taint classification. */
struct TaintState
{
    std::string name;  ///< hierarchical path (DUT-relative)
    bool isMemory = false;
    bool source = false;
    TaintOrigin origin = TaintOrigin::Surviving;
    TaintLabel label;
    /** Memory only: taint via which-word-is-written divergence. */
    TaintLabel addrChannel;
    /** Memory only: taint via written-data divergence (or source). */
    TaintLabel dataChannel;
};

/** Per-output-port taint result. */
struct TaintOutput
{
    std::string name;   ///< port name
    bool gated = false; ///< payload of a same-direction transaction
    TaintLabel label;   ///< depth = first possible divergence
};

/** Full information-flow report for one DUT. */
struct TaintReport
{
    std::string dutName;
    bool hasFlushFacts = false;
    bool hasFlushDone = false;

    /** Per-node labels, indexed by NodeId. */
    std::vector<TaintLabel> nodes;
    /** Register and memory rows, regs first (Netlist order). */
    std::vector<TaintState> states;
    /** One row per output port (Netlist order). */
    std::vector<TaintOutput> outputs;
    /** Gated input payload ports treated as sources. */
    std::vector<std::string> gatedInputs;

    bool tainted(rtl::NodeId id) const { return nodes[id].tainted(); }

    /** Taint label of output port `name`; tainted if unknown. */
    TaintLabel outputLabel(const std::string &name) const;

    /** True unless `name` is a provably untainted output port. */
    bool outputTainted(const std::string &name) const
    {
        return outputLabel(name).tainted();
    }

    /** Output ports proven untainted (spy-equality holds statically). */
    std::vector<std::string> untaintedOutputs() const;

    /** Number of source state elements. */
    size_t numSources() const;

    /** Record taint.* keys (sources, tainted/untainted counts). */
    void exportStats(obs::Registry &registry) const;

    /** Human-readable label table + per-output divergence depths. */
    std::string render() const;
};

/** Run the information-flow analysis on `dut`; see file comment. */
TaintReport analyzeTaint(const rtl::Netlist &dut,
                         const TaintOptions &options = {});

/**
 * Copy per-state first-divergence depths into a leak report's
 * StateClass::taintDepth fields (matched by name), so
 * LeakReport::rankedCandidates() can order candidates by how soon
 * divergent data can reach them.
 */
void attachTaintDepths(LeakReport &leaks, const TaintReport &taint);

} // namespace autocc::analysis

#endif // AUTOCC_ANALYSIS_TAINT_HH

#include "analysis/dot.hh"

#include <sstream>
#include <unordered_map>

#include "analysis/dataflow.hh"

namespace autocc::analysis
{

using rtl::Netlist;
using rtl::Node;
using rtl::NodeId;
using rtl::Op;

namespace
{

const char *
opLabel(Op op)
{
    switch (op) {
      case Op::Input: return "input";
      case Op::Const: return "const";
      case Op::Reg: return "reg";
      case Op::MemRead: return "memrd";
      case Op::Not: return "~";
      case Op::And: return "&";
      case Op::Or: return "|";
      case Op::Xor: return "^";
      case Op::Mux: return "mux";
      case Op::Add: return "+";
      case Op::Sub: return "-";
      case Op::Eq: return "==";
      case Op::Ult: return "<";
      case Op::ShlC: return "<<";
      case Op::ShrC: return ">>";
      case Op::Concat: return "cat";
      case Op::Slice: return "slice";
      case Op::RedOr: return "|red";
      case Op::RedAnd: return "&red";
    }
    return "?";
}

} // namespace

std::string
toDot(const Netlist &netlist, const DotOptions &options)
{
    // Mark reachable nodes (fan-in cone of the requested roots, or
    // all).  Root-limited rendering follows register next-states but
    // not memory write ports, matching what a waveform debugger would
    // show for the signal.
    std::vector<bool> keep(netlist.numNodes(), options.roots.empty());
    if (!options.roots.empty()) {
        std::vector<NodeId> roots;
        for (const auto &name : options.roots)
            roots.push_back(netlist.signal(name));
        ReachOptions reach;
        reach.throughMemWrites = false;
        keep = DataflowGraph(netlist).backwardCone(roots, reach).nodes;
    }

    // Reverse names for labels.
    std::unordered_map<NodeId, std::string> label;
    for (const auto &[name, node] : netlist.signals()) {
        auto &slot = label[node];
        if (slot.empty() || name.size() < slot.size())
            slot = name;
    }

    std::ostringstream os;
    os << "digraph \"" << netlist.name() << "\" {\n"
       << "  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
    for (NodeId id = 0; id < netlist.numNodes(); ++id) {
        if (!keep[id])
            continue;
        const Node &node = netlist.node(id);
        if (node.op == Op::Const && options.foldConstants)
            continue;
        os << "  n" << id << " [label=\"" << opLabel(node.op);
        if (node.op == Op::Const)
            os << " 0x" << std::hex << node.value << std::dec;
        if (node.op == Op::Slice || node.op == Op::ShlC ||
            node.op == Op::ShrC) {
            os << " @" << node.aux;
        }
        const auto it = label.find(id);
        if (it != label.end())
            os << "\\n" << it->second;
        os << "\\n[" << node.width << "b]\"";
        if (node.op == Op::Reg)
            os << ", style=filled, fillcolor=lightblue";
        else if (node.op == Op::Input)
            os << ", style=filled, fillcolor=lightyellow";
        os << "];\n";
        for (uint8_t i = 0; i < node.numOperands; ++i) {
            const NodeId src = node.operands[i];
            if (netlist.node(src).op == Op::Const && options.foldConstants)
                continue;
            os << "  n" << src << " -> n" << id << ";\n";
        }
    }
    // Register next-state edges (dashed).
    for (const auto &reg : netlist.regs()) {
        if (keep[reg.node] && reg.next != rtl::invalidNode &&
            keep[reg.next] &&
            !(netlist.node(reg.next).op == Op::Const &&
              options.foldConstants)) {
            os << "  n" << reg.next << " -> n" << reg.node
               << " [style=dashed, color=gray];\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace autocc::analysis

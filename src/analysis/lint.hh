/**
 * @file
 * Structural well-formedness lint over the netlist IR.
 *
 * Rules are machine-checkable structural properties whose violation
 * either indicates a broken netlist (Error — the IR builders panic on
 * most of these, so they fire only on hand-assembled or transformed
 * netlists and serve as defense in depth after passes like COI
 * pruning) or a design smell that AutoCC's miter construction will
 * silently tolerate but that usually hides a modeling bug (Warning):
 *
 *   E-OP-ARITY       operator has the wrong operand count
 *   E-OP-WIDTH       operand/result widths inconsistent for the op
 *   E-REG-NEXT       register next-state unconnected or wrong width
 *   E-TXN-PORT       transaction references a nonexistent port
 *   W-TXN-DIR        transaction payload direction differs from its
 *                    valid's — the miter will NOT gate this payload's
 *                    equality by the valid (silently ungated today)
 *   W-REG-NEVER-READ register drives nothing at all
 *   W-REG-UNOBSERVABLE register outside the backward cone of every
 *                    output/property/arch/flush-done signal — state
 *                    the spy can provably never observe
 *   W-FLUSH-CLAIM    flush sequence does not actually drive a
 *                    register it claims to clear to a constant
 *   W-TAINT-FLUSH-GAP on a DUT that declares a flush, a register the
 *                    information-flow engine still labels tainted —
 *                    either outside the flush cone entirely (a taint
 *                    source) or cleared but re-tainted by surviving
 *                    state (analysis/taint.hh)
 *   W-TAINT-OUT-UNCHECKED tainted output port outside the backward
 *                    cone of every embedded assertion — divergence the
 *                    properties cannot see (skipped on netlists with
 *                    no assertions: DUT outputs are normally covered
 *                    by the *generated* miter equality asserts)
 *   W-INPUT-UNUSED   input port drives nothing
 *   I-DEAD-NODE      unnamed combinational node with no fan-out
 *
 * Findings carry a rule id, severity and hierarchical node path, and
 * can be waived by rule ("W-REG-UNOBSERVABLE") or by rule:path
 * substring ("W-REG-UNOBSERVABLE:scratch") — the waiver mechanism CI
 * uses to keep `lint` gating while documenting known-intentional
 * exceptions.
 */

#ifndef AUTOCC_ANALYSIS_LINT_HH
#define AUTOCC_ANALYSIS_LINT_HH

#include <string>
#include <vector>

#include "rtl/netlist.hh"

namespace autocc::analysis
{

/** How bad a lint finding is. */
enum class Severity { Info, Warning, Error };

/** One machine-readable lint finding. */
struct LintFinding
{
    std::string rule;    ///< e.g. "W-REG-UNOBSERVABLE"
    Severity severity = Severity::Warning;
    std::string path;    ///< hierarchical node/port/transaction path
    std::string message; ///< human-readable explanation
    bool waived = false; ///< matched a waiver entry
};

/** Waivers: entries are "RULE" or "RULE:path-substring". */
struct LintWaivers
{
    std::vector<std::string> entries;

    bool matches(const std::string &rule, const std::string &path) const;
};

/** All findings for one netlist. */
struct LintReport
{
    std::string netlistName;
    std::vector<LintFinding> findings;

    /** Unwaived findings at or above `at_least`. */
    size_t count(Severity at_least = Severity::Warning) const;

    /** True when nothing at/above `at_least` survived the waivers. */
    bool clean(Severity at_least = Severity::Warning) const
    {
        return count(at_least) == 0;
    }

    /** One "severity rule path message" line per finding. */
    std::string render(bool include_waived = true) const;
};

const char *severityName(Severity severity);

/** Run every lint rule on `netlist`. */
LintReport runLint(const rtl::Netlist &netlist,
                   const LintWaivers &waivers = {});

} // namespace autocc::analysis

#endif // AUTOCC_ANALYSIS_LINT_HH

#include "analysis/coi.hh"

#include <sstream>

#include "analysis/dataflow.hh"
#include "obs/stats.hh"
#include "rtl/clone.hh"

namespace autocc::analysis
{

using rtl::Netlist;
using rtl::NodeId;

namespace
{

size_t
countInputs(const Netlist &netlist)
{
    size_t n = 0;
    for (const auto &port : netlist.ports()) {
        if (port.dir == rtl::PortDir::In)
            ++n;
    }
    return n;
}

} // namespace

CoiResult
coiPrune(const Netlist &src)
{
    CoiResult result;
    result.nodesBefore = src.numNodes();
    result.regsBefore = src.regs().size();
    result.memsBefore = src.mems().size();
    result.inputsBefore = countInputs(src);

    std::vector<NodeId> roots;
    for (const auto &property : src.asserts())
        roots.push_back(property.node);
    for (const auto &property : src.assumes())
        roots.push_back(property.node);

    result.netlist.setName(src.name());
    rtl::CloneResult clone;
    if (roots.empty()) {
        clone = rtl::cloneInto(src, result.netlist, "", nullptr);
    } else {
        const DataflowGraph graph(src);
        const Cone cone = graph.backwardCone(roots);
        clone = rtl::cloneInto(src, result.netlist, "", nullptr,
                               &cone.nodes);
    }
    // cloneInto installs assumes but only returns asserts; reinstall
    // them in source order so the engine blames the same assertion.
    for (const auto &assertion : clone.asserts)
        result.netlist.addAssert(assertion.name, assertion.node);

    result.nodesAfter = result.netlist.numNodes();
    result.regsAfter = result.netlist.regs().size();
    result.memsAfter = result.netlist.mems().size();
    result.inputsAfter = countInputs(result.netlist);
    return result;
}

void
CoiResult::exportStats(obs::Registry &registry) const
{
    registry.add("coi.runs");
    registry.add("coi.nodes_before", nodesBefore);
    registry.add("coi.nodes_after", nodesAfter);
    registry.add("coi.nodes_pruned", nodesBefore - nodesAfter);
    registry.add("coi.regs_before", regsBefore);
    registry.add("coi.regs_after", regsAfter);
    registry.add("coi.regs_pruned", regsBefore - regsAfter);
    registry.add("coi.mems_pruned", memsBefore - memsAfter);
    registry.add("coi.inputs_pruned", inputsBefore - inputsAfter);
}

std::string
CoiResult::render() const
{
    std::ostringstream os;
    os << "coi: kept " << nodesAfter << "/" << nodesBefore << " nodes, "
       << regsAfter << "/" << regsBefore << " regs, " << memsAfter << "/"
       << memsBefore << " mems, " << inputsAfter << "/" << inputsBefore
       << " inputs";
    return os.str();
}

} // namespace autocc::analysis
